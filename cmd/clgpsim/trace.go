package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"clgp/internal/core"
	"clgp/internal/sim"
	"clgp/internal/trace"
	"clgp/internal/tracefile"
	"clgp/internal/workload"
)

// cmdTrace dispatches the trace-container subcommands: record a workload's
// committed trace to disk, inspect a container, extract a SimPoint-style
// slice, and benchmark the trace I/O path.
func cmdTrace(args []string) error {
	if len(args) < 1 {
		traceUsage()
		return fmt.Errorf("trace needs a subcommand")
	}
	switch args[0] {
	case "record":
		return cmdTraceRecord(args[1:])
	case "info":
		return cmdTraceInfo(args[1:])
	case "slice":
		return cmdTraceSlice(args[1:])
	case "bench":
		return cmdTraceBench(args[1:])
	default:
		traceUsage()
		return fmt.Errorf("unknown trace subcommand %q", args[0])
	}
}

func traceUsage() {
	fmt.Fprint(os.Stderr, `clgpsim trace — on-disk trace containers

subcommands:
  record   walk a workload profile and stream its committed trace to a container
  info     print a container's header and chunk index
  slice    extract a record range into a new container (SimPoint interval extraction)
  bench    measure encode/decode/streamed-engine throughput and emit BENCH json
`)
}

func cmdTraceRecord(args []string) error {
	fs := flag.NewFlagSet("trace record", flag.ExitOnError)
	profile := fs.String("profile", "gcc", "workload profile to record")
	insts := fs.Int("insts", 1_000_000, "trace length in instructions")
	seed := fs.Int64("seed", 1, "workload generation seed")
	out := fs.String("o", "", "output container path (default <profile>.clgt)")
	chunk := fs.Int("chunk", 0, "records per chunk (0 = default)")
	logSetup := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := logSetup(); err != nil {
		return err
	}
	p, err := workload.ProfileByName(*profile)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = p.Name + ".clgt"
	}
	start := time.Now()
	if _, err := sim.RecordTrace(p, *insts, *seed, path, *chunk); err != nil {
		return err
	}
	wall := time.Since(start)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d records, %d bytes (%.2f B/record) in %v (%.0f records/sec)\n",
		path, *insts, st.Size(), float64(st.Size())/float64(*insts),
		wall.Round(time.Millisecond), float64(*insts)/wall.Seconds())
	return nil
}

func cmdTraceInfo(args []string) error {
	fs := flag.NewFlagSet("trace info", flag.ExitOnError)
	chunks := fs.Bool("chunks", false, "also list the per-chunk index")
	logSetup := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := logSetup(); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace info needs exactly one container path")
	}
	path := fs.Arg(0)
	rd, err := tracefile.Open(path)
	if err != nil {
		return err
	}
	defer rd.Close()
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", path)
	fmt.Printf("  workload:      %s (seed %d)\n", rd.Workload(), rd.Seed())
	fmt.Printf("  fingerprint:   %#x\n", rd.Fingerprint())
	fmt.Printf("  records:       %d in %d chunks (%d records/chunk)\n",
		rd.Len(), rd.NumChunks(), rd.ChunkRecords())
	if rd.Origin() != 0 {
		fmt.Printf("  slice origin:  record %d of the full generation\n", rd.Origin())
	}
	fmt.Printf("  file size:     %d bytes (%d compressed payload, %.2f B/record)\n",
		st.Size(), rd.CompressedBytes(), float64(st.Size())/float64(max(rd.Len(), 1)))
	if *chunks {
		for i := 0; i < rd.NumChunks(); i++ {
			ci := rd.Chunk(i)
			fmt.Printf("  chunk %4d: records [%d,%d) @ offset %d, %d bytes\n",
				i, ci.FirstRecord, ci.FirstRecord+ci.Records, ci.Offset, ci.CompressedBytes)
		}
	}
	return nil
}

func cmdTraceSlice(args []string) error {
	fs := flag.NewFlagSet("trace slice", flag.ExitOnError)
	from := fs.Int("from", 0, "first record of the slice")
	count := fs.Int("count", 0, "records in the slice (0 = through the end)")
	simpoint := fs.Bool("simpoint", false, "derive -from by basic-block distribution analysis: profile the source in -count-record intervals and slice the most representative one (the paper's SimPoint selection)")
	out := fs.String("o", "", "output container path (required)")
	chunk := fs.Int("chunk", 0, "records per chunk of the slice (0 = same as source)")
	logSetup := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := logSetup(); err != nil {
		return err
	}
	if fs.NArg() != 1 || *out == "" {
		return fmt.Errorf("trace slice needs -o OUT and exactly one source container")
	}
	src, err := tracefile.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer src.Close()
	lo := *from
	hi := src.Len()
	if *count > 0 {
		hi = lo + *count
	}
	if *simpoint {
		if *count <= 0 {
			return fmt.Errorf("trace slice -simpoint needs -count (the SimPoint interval length)")
		}
		if *from != 0 {
			return fmt.Errorf("trace slice -simpoint selects the start itself; drop -from")
		}
		recs := make([]trace.Record, src.Len())
		for i := 0; i < src.Len(); {
			n, err := src.ReadRecordsAt(i, recs[i:])
			if err != nil {
				return err
			}
			i += n
		}
		sl, best, err := trace.RepresentativeSlice(trace.NewMemTrace(recs), *count)
		if err != nil {
			return err
		}
		lo = best * *count
		hi = lo + sl.Len()
		fmt.Printf("simpoint: interval %d ([%d,%d) of %d records) is closest to the whole-trace basic-block distribution\n",
			best, lo, hi, src.Len())
	}
	if lo < 0 || hi > src.Len() || lo >= hi {
		return fmt.Errorf("slice [%d,%d) out of range 0..%d", lo, hi, src.Len())
	}
	cr := *chunk
	if cr == 0 {
		cr = src.ChunkRecords()
	}
	// The slice keeps the source's identity (workload, seed, fingerprint):
	// it is the same program's trace, just a shorter interval of it — and
	// the header records where that interval starts, so consumers that need
	// a from-the-start trace can tell the difference.
	dst, err := tracefile.Create(*out, tracefile.Options{
		Workload: src.Workload(), Fingerprint: src.Fingerprint(), Seed: src.Seed(),
		Origin: src.Origin() + lo, ChunkRecords: cr,
	})
	if err != nil {
		return err
	}
	if err := tracefile.Slice(dst, src, lo, hi); err != nil {
		dst.Close()
		os.Remove(*out)
		return err
	}
	if err := dst.Close(); err != nil {
		os.Remove(*out)
		return err
	}
	fmt.Printf("sliced records [%d,%d) of %s into %s\n", lo, hi, fs.Arg(0), *out)
	return nil
}

func cmdTraceBench(args []string) error {
	fs := flag.NewFlagSet("trace bench", flag.ExitOnError)
	profile := fs.String("profile", "gcc", "workload profile")
	insts := fs.Int("insts", 500_000, "trace length in instructions")
	seed := fs.Int64("seed", 1, "workload generation seed")
	window := fs.Int("window", 0, "streamed-run window cap in records (0 = default)")
	engine := fs.String("engine", "clgp", "engine for the streamed run")
	jsonPath := fs.String("json", "BENCH_tracefile.json", "BENCH output path (empty = skip)")
	logSetup := logFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := logSetup(); err != nil {
		return err
	}
	p, err := workload.ProfileByName(*profile)
	if err != nil {
		return err
	}
	ek, err := core.ParseEngineKind(*engine)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "clgp-trace-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, p.Name+".clgt")

	// Encode: workload walk streaming straight to the container, recorded
	// exactly as production containers are (fingerprint included), so the
	// streamed run below pays the same validation a real run does.
	start := time.Now()
	if _, err := sim.RecordTrace(p, *insts, *seed, path, 0); err != nil {
		return err
	}
	encWall := time.Since(start)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	encRec := tracefile.ThroughputRecord{
		Name: "tracefile-encode", Records: *insts, Bytes: st.Size(),
		BytesPerRecord: float64(st.Size()) / float64(*insts),
		WallSeconds:    encWall.Seconds(), RecordsPerSec: float64(*insts) / encWall.Seconds(),
	}
	fmt.Printf("encode: %d records -> %d bytes (%.2f B/record) in %v (%.0f records/sec)\n",
		encRec.Records, encRec.Bytes, encRec.BytesPerRecord,
		encWall.Round(time.Millisecond), encRec.RecordsPerSec)

	// Decode: a full sequential scan through the chunk cache.
	rd, err := tracefile.Open(path)
	if err != nil {
		return err
	}
	var batch [4096]trace.Record
	start = time.Now()
	for i := 0; i < rd.Len(); {
		n, err := rd.ReadRecordsAt(i, batch[:])
		if err != nil {
			rd.Close()
			return err
		}
		i += n
	}
	decWall := time.Since(start)
	rd.Close()
	decRec := tracefile.ThroughputRecord{
		Name: "tracefile-decode", Records: *insts, Bytes: st.Size(),
		WallSeconds: decWall.Seconds(), RecordsPerSec: float64(*insts) / decWall.Seconds(),
	}
	fmt.Printf("decode: %d records in %v (%.0f records/sec)\n",
		decRec.Records, decWall.Round(time.Millisecond), decRec.RecordsPerSec)

	// Streamed engine: the cycle engine over a bounded window of the file,
	// opened through the production validation path.
	sw, rd, err := sim.OpenStreamImage(path)
	if err != nil {
		return err
	}
	defer rd.Close()
	wt, err := trace.NewWindowTrace(rd, *window)
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(core.Config{Engine: ek, L1ISize: 2 << 10}, sw.Dict, wt)
	if err != nil {
		return err
	}
	start = time.Now()
	r, err := eng.Run()
	if err != nil {
		return err
	}
	runWall := time.Since(start)
	runRec := tracefile.ThroughputRecord{
		Name: "engine-streamed", Records: *insts,
		WallSeconds: runWall.Seconds(), RecordsPerSec: float64(*insts) / runWall.Seconds(),
		CyclesPerSec: float64(r.Cycles) / runWall.Seconds(),
		WindowCap:    wt.Cap(),
		MaxResident:  wt.MaxResident(),
	}
	fmt.Printf("stream: %s over %d records in %v (%.0f cycles/sec, window %d, max resident %d)\n",
		ek, *insts, runWall.Round(time.Millisecond), runRec.CyclesPerSec, runRec.WindowCap, runRec.MaxResident)

	if *jsonPath != "" {
		recs := []tracefile.ThroughputRecord{encRec, decRec, runRec}
		if err := tracefile.WriteBenchJSON(*jsonPath, recs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
