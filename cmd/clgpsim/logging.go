package main

import (
	"flag"
	"log/slog"
	"os"

	"clgp/internal/telemetry"
)

// logFlags registers the shared -log-level/-log-format flags on a subcommand
// flag set and returns a setup function to call after fs.Parse. setup builds
// the configured slog.Logger (writing to stderr, so structured logs never
// pollute the stdout result streams CI greps), installs it as the process
// default, and returns it for direct wiring into the orchestrator.
func logFlags(fs *flag.FlagSet) (setup func() (*slog.Logger, error)) {
	level := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	format := fs.String("log-format", "text", "log encoding: text or json")
	return func() (*slog.Logger, error) {
		lg, err := telemetry.NewLogger(os.Stderr, *level, *format)
		if err != nil {
			return nil, err
		}
		slog.SetDefault(lg)
		return lg, nil
	}
}
