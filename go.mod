module clgp

go 1.22
