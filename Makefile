GO ?= go

.PHONY: all build test vet bench bench-smoke run sweep clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full benchmark pass (allocation counts are the contract: 0 allocs/op on
# every steady-state path).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Quick smoke used by CI: a few iterations of every benchmark, just enough
# to catch regressions in the allocation-free invariant.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 100x -benchmem ./...

run:
	$(GO) run ./cmd/clgpsim run -profile gcc -insts 200000 -engine clgp -l1 2048 -l0

sweep:
	$(GO) run ./cmd/clgpsim sweep -profile gcc -insts 100000

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json
