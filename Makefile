GO ?= go

.PHONY: all build test test-race vet bench bench-smoke bench-gate run sweep figures stream-smoke remote-smoke snapshot-smoke clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark pass (allocation counts are the contract: 0 allocs/op on
# every steady-state path).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Quick smoke used by CI: a few iterations of every benchmark, just enough
# to catch regressions in the allocation-free invariant.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 100x -benchmem ./...

# The cycle-engine perf gate: re-measure every (profile x engine) grid point
# in both clock modes and compare against the committed BENCH_core.json —
# calibration-scaled ns/cycle must stay within 10% (+ a small absolute noise
# floor), the event-horizon speedup must hold on the miss-heavy profiles, no
# profile may be slower than the per-cycle path, and the loop must not
# allocate. The grid_fused record is re-measured too: lane fusion must hold
# parity within noise with per-run streaming on the 16-config grid (both
# sides measured in the same run, machine-independent) and allocation-free.
# Mirrors CI's bench-gate job.
bench-gate:
	$(GO) run ./cmd/clgpsim bench -grid=false -core-json BENCH_core.fresh.json -gate BENCH_core.json -max-regress 0.10

run:
	$(GO) run ./cmd/clgpsim run -profile gcc -insts 200000 -engine clgp -l1 2048 -l0

sweep:
	$(GO) run ./cmd/clgpsim sweep -profile gcc -insts 100000

# Full paper-figure grid (12 profiles, sharded + checkpointed into
# clgp-figures/; re-run with the same target to resume after interruption).
figures:
	$(GO) run ./cmd/clgpsim figures -insts 200000 -dir clgp-figures -resume

# Record a trace container and stream it back through a bounded window:
# the summary must be bit-identical to the regenerating in-memory path.
# (No pipes around clgpsim — a simulator failure must fail the recipe.)
stream-smoke:
	$(GO) run ./cmd/clgpsim trace record -profile gzip -insts 50000 -seed 1 -o /tmp/clgp-smoke.clgt
	$(GO) run ./cmd/clgpsim run -profile gzip -insts 50000 -seed 1 -engine clgp -l1 2048 > /tmp/clgp-smoke-mem-full.txt
	$(GO) run ./cmd/clgpsim run -tracefile /tmp/clgp-smoke.clgt -window 8192 -engine clgp -l1 2048 > /tmp/clgp-smoke-str-full.txt
	grep -v "wall time" /tmp/clgp-smoke-mem-full.txt > /tmp/clgp-smoke-mem.txt
	grep -v -e "wall time" -e "trace window" /tmp/clgp-smoke-str-full.txt > /tmp/clgp-smoke-str.txt
	diff /tmp/clgp-smoke-mem.txt /tmp/clgp-smoke-str.txt
	$(GO) run ./cmd/clgpsim trace bench -profile gzip -insts 100000 -json BENCH_tracefile.json

# The multi-host dispatch protocol on one machine: an HTTP object store,
# child workers pointed at the URL, merged figures diffed against the
# in-process run. Mirrors CI's remote-smoke job.
remote-smoke:
	rm -rf /tmp/clgp-remote-smoke && mkdir -p /tmp/clgp-remote-smoke
	$(GO) build -o /tmp/clgp-remote-smoke/clgpsim ./cmd/clgpsim
	cd /tmp/clgp-remote-smoke && ./clgpsim figures -insts 20000 -profiles gzip,mcf -dir fig-local
	cd /tmp/clgp-remote-smoke && { ./clgpsim store serve -dir store-root -addr 127.0.0.1:0 -addr-file addr.txt & echo $$! > server.pid; } && \
	for i in $$(seq 1 50); do [ -s addr.txt ] && break; sleep 0.1; done
	cd /tmp/clgp-remote-smoke && trap 'kill $$(cat server.pid) 2>/dev/null || true' EXIT && \
		./clgpsim figures -insts 20000 -profiles gzip,mcf \
			-store "http://$$(cat addr.txt)" -exec -retries 2 -dir fig-remote -json BENCH_dispatch.json && \
		diff fig-local/figure6_ipc_90nm.csv fig-remote/figure6_ipc_90nm.csv
	@echo "remote-smoke: object-store sweep matches in-process run"

# Warm-state snapshots end to end: a cold figures sweep records warm-state
# artifacts into the store, a second sweep over the same store restores them,
# and the emitted figure CSVs must be byte-identical to a sweep that never
# snapshotted at all. Mirrors CI's snapshot-smoke job.
snapshot-smoke:
	rm -rf /tmp/clgp-snapshot-smoke && mkdir -p /tmp/clgp-snapshot-smoke
	$(GO) build -o /tmp/clgp-snapshot-smoke/clgpsim ./cmd/clgpsim
	cd /tmp/clgp-snapshot-smoke && ./clgpsim figures -insts 20000 -profiles gzip,mcf -dir fig-plain
	cd /tmp/clgp-snapshot-smoke && ./clgpsim figures -insts 20000 -profiles gzip,mcf -warmup 10000 -dir fig-cold
	test -n "$$(ls /tmp/clgp-snapshot-smoke/fig-cold/snapshots)"
	cd /tmp/clgp-snapshot-smoke && cp -r fig-cold fig-warm && rm -rf fig-warm/shards && \
		./clgpsim figures -insts 20000 -profiles gzip,mcf -warmup 10000 -dir fig-warm -resume
	cd /tmp/clgp-snapshot-smoke && \
		diff fig-plain/figure6_ipc_90nm.csv fig-cold/figure6_ipc_90nm.csv && \
		diff fig-plain/figure6_ipc_90nm.csv fig-warm/figure6_ipc_90nm.csv && \
		diff fig-plain/figure1_ipc_vs_l1_90nm.csv fig-warm/figure1_ipc_vs_l1_90nm.csv
	@echo "snapshot-smoke: cold-recording and warm-restoring sweeps match the plain run"

clean:
	$(GO) clean ./...
	rm -f $(filter-out BENCH_core.json,$(wildcard BENCH_*.json))
	rm -rf clgp-figures
