GO ?= go

.PHONY: all build test test-race vet bench bench-smoke run sweep figures clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark pass (allocation counts are the contract: 0 allocs/op on
# every steady-state path).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Quick smoke used by CI: a few iterations of every benchmark, just enough
# to catch regressions in the allocation-free invariant.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 100x -benchmem ./...

run:
	$(GO) run ./cmd/clgpsim run -profile gcc -insts 200000 -engine clgp -l1 2048 -l0

sweep:
	$(GO) run ./cmd/clgpsim sweep -profile gcc -insts 100000

# Full paper-figure grid (12 profiles, sharded + checkpointed into
# clgp-figures/; re-run with the same target to resume after interruption).
figures:
	$(GO) run ./cmd/clgpsim figures -insts 200000 -dir clgp-figures -resume

clean:
	$(GO) clean ./...
	rm -f BENCH_*.json
	rm -rf clgp-figures
